// Package cuckoograph is a Go implementation of CuckooGraph, the
// scalable and space-time efficient data structure for large-scale
// dynamic graphs from the ICDE 2025 paper of the same name
// (arXiv:2405.15193).
//
// CuckooGraph replaces the adjacency list / CSR foundations of dynamic
// graph stores with a hierarchy of cuckoo hash tables:
//
//   - a large cuckoo hash table (L-CHT) maps each source node u to a
//     cell whose Part 2 holds up to 2R neighbour ids inline;
//   - nodes whose degree outgrows the inline slots transform the cell
//     into R pointers at small cuckoo hash tables (an S-CHT chain) that
//     grow and shrink by a fixed rule (TRANSFORMATION, Table II of the
//     paper), so space tracks the live degree of every node;
//   - insertion failures from cuckoo kick wars land in small bounded
//     denylists (DENYLIST) that are drained back on every expansion.
//
// The result is O(1) edge insertion, query and deletion with a bounded
// number of memory accesses, and space proportional to the number of
// live edges — no resizing stalls, no pointer-chasing adjacency walks.
//
// # Quick start
//
//	g := cuckoograph.New()
//	g.InsertEdge(1, 2)
//	g.HasEdge(1, 2)        // true
//	g.Successors(1)        // [2]
//	g.DeleteEdge(1, 2)
//
// Use NewWeighted for streams with duplicate edges (each edge carries a
// multiplicity weight, §III-B of the paper) and NewMulti for
// property-graph workloads where several distinct edges connect the same
// node pair (§V-G).
//
// The internal packages also contain from-scratch implementations of the
// paper's baselines (LiveGraph, Sortledton, Wind-Bell Index, Spruce,
// adjacency list, PCSR), the graph analytics suite (BFS, SSSP, TC, CC,
// PageRank, BC, LCC), synthetic dataset generators matching Table IV,
// a Redis-like RESP server with a CuckooGraph module and a Neo4j-like
// property-graph engine — everything needed to regenerate the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package cuckoograph
