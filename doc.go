// Package cuckoograph is a Go implementation of CuckooGraph, the
// scalable and space-time efficient data structure for large-scale
// dynamic graphs from the ICDE 2025 paper of the same name
// (arXiv:2405.15193).
//
// CuckooGraph replaces the adjacency list / CSR foundations of dynamic
// graph stores with a hierarchy of cuckoo hash tables:
//
//   - a large cuckoo hash table (L-CHT) maps each source node u to a
//     cell whose Part 2 holds up to 2R neighbour ids inline;
//   - nodes whose degree outgrows the inline slots transform the cell
//     into R pointers at small cuckoo hash tables (an S-CHT chain) that
//     grow and shrink by a fixed rule (TRANSFORMATION, Table II of the
//     paper), so space tracks the live degree of every node;
//   - insertion failures from cuckoo kick wars land in small bounded
//     denylists (DENYLIST) that are drained back on every expansion.
//
// The result is O(1) edge insertion, query and deletion with a bounded
// number of memory accesses, and space proportional to the number of
// live edges — no resizing stalls, no pointer-chasing adjacency walks.
//
// # Probe path
//
// The cuckoo tables are probed with a vectorized, hash-once discipline.
// Each operation hashes its key a single time into 64 bits (the
// splitmix64 finaliser); every table of a chain derives its two bucket
// indexes from that one value by remixing it with a per-table seed, so
// a chain-wide probe costs one hash however many tables it touches.
// Each cell carries a one-byte fingerprint tag derived from the same
// hash (zero marks an empty cell), and a bucket's tags are packed into
// a word stored immediately before the bucket's keys: a probe loads
// the tag word, rejects non-matching cells with a SWAR broadcast-XOR
// zero-byte scan, and verifies the surviving candidate against the
// full stored key. Tags only pre-filter — the key compare decides — so
// a tag collision costs one extra compare and can never produce a
// wrong result; kicked cells carry their tag byte with them, and since
// the tag is a pure function of the key's hash, merges re-derive the
// identical tag when re-homing entries. The read path (HasEdge, Degree,
// ForEachSuccessor, and the analytics iteration on top) performs zero
// heap allocations per operation.
//
// # Quick start
//
//	g := cuckoograph.New()
//	g.InsertEdge(1, 2)
//	g.HasEdge(1, 2)        // true
//	g.Successors(1)        // [2]
//	g.DeleteEdge(1, 2)
//
// Use NewWeighted for streams with duplicate edges (each edge carries a
// multiplicity weight, §III-B of the paper) and NewMulti for
// property-graph workloads where several distinct edges connect the same
// node pair (§V-G).
//
// # Concurrency
//
// Graph, Weighted and Multi are single-writer structures. For shared
// use, NewSafe returns a SafeGraph backed by the sharded concurrent
// engine: edges are hash-partitioned by source node across
// Options.ShardCount shards (rounded up to a power of two, defaulting
// to runtime.GOMAXPROCS(0)), each shard a private CuckooGraph behind
// its own read-write lock. All state for a node u — its L-CHT cell and
// its S-CHT chain — lives in exactly one shard, so mutations on
// different shards proceed fully in parallel and queries take only the
// owning shard's read lock. Aggregate counters are atomics; Stats and
// MemoryUsage merge across shards; Save serializes a consistent cut
// from a frozen view without holding shard locks across the write, and
// snapshots round-trip across different shard counts (and to/from the
// single-writer Graph format).
//
// Traversal callbacks (ForEachSuccessor, ForEachNode) run on a
// point-in-time copy taken under the shard read lock and invoked after
// it is released, so callbacks may re-enter — and even mutate — the
// graph without deadlocking. Options.Parallelism sets the worker count
// for SafeGraph.BFS and SafeGraph.PageRank, the worker-pool analytics
// built on the sharded engine.
//
// # Snapshots
//
// SafeGraph.Snapshot returns a FrozenView: an immutable, cross-shard-
// consistent snapshot stamped with a monotonic epoch. Opening one
// copies nothing — the graph briefly freezes each shard to register the
// view, then lazily copies-on-write only the adjacency cells later
// mutations actually touch, at L-CHT cell granularity, sharing each
// pre-image across all live views. Long analytics passes
// (FrozenView.BFS, FrozenView.PageRank) therefore run on a stable
// point-in-time graph without ever blocking writers. Call Release when
// done so the graph stops preserving state for the view.
//
// Frozen views also satisfy the graphstore.Indexed capability: the
// first analytics pass against a view compiles it into a compressed-
// sparse-row index (internal/csr — a node-id dictionary plus flat
// offsets/edges arrays, built shard-parallel off the frozen view
// without stalling writers), memoizes it on the view, and every kernel
// in internal/analytics then runs over flat dense-id arrays instead of
// per-edge store probes — an order of magnitude faster on traversal-
// heavy passes. The index is freed with the view's last Release.
//
// # Durability and replication
//
// internal/wal makes the sharded engine durable: a segmented,
// CRC-framed write-ahead log with group commit, checkpoint snapshots
// and crash recovery. The same log doubles as a replication stream —
// wal.Reader tails durable frames, retention Pins keep compaction
// behind connected followers, and internal/redislike ships the log to
// read replicas over RESP (g.replicate / g.replack; cgserver
// -replica-of). See README.md § Replication for the consistency
// contract.
//
// The internal packages also contain from-scratch implementations of the
// paper's baselines (LiveGraph, Sortledton, Wind-Bell Index, Spruce,
// adjacency list, PCSR), the graph analytics suite (BFS, SSSP, TC, CC,
// PageRank, BC, LCC), synthetic dataset generators matching Table IV,
// a Redis-like RESP server with a CuckooGraph module and a Neo4j-like
// property-graph engine — everything needed to regenerate the paper's
// evaluation; see DESIGN.md and EXPERIMENTS.md.
package cuckoograph
