package cuckoograph

import (
	"io"
	"sync"

	"cuckoograph/internal/core"
)

// SafeGraph is a Graph guarded by a read-write lock: point queries and
// traversals run concurrently, mutations serialise. The underlying
// structure is the same single-writer CuckooGraph; this wrapper is the
// deployment shape used by the server integrations (§V-F runs the
// structure behind Redis's command loop).
type SafeGraph struct {
	mu sync.RWMutex
	g  *Graph
}

// NewSafe returns a concurrency-safe basic CuckooGraph.
func NewSafe() *SafeGraph { return NewSafeWithOptions(Options{}) }

// NewSafeWithOptions returns a concurrency-safe graph with the given
// tuning.
func NewSafeWithOptions(o Options) *SafeGraph {
	return &SafeGraph{g: NewWithOptions(o)}
}

// InsertEdge adds ⟨u,v⟩, reporting whether it is new.
func (s *SafeGraph) InsertEdge(u, v NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.InsertEdge(u, v)
}

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed.
func (s *SafeGraph) DeleteEdge(u, v NodeID) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.g.DeleteEdge(u, v)
}

// HasEdge reports whether ⟨u,v⟩ is stored.
func (s *SafeGraph) HasEdge(u, v NodeID) bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.HasEdge(u, v)
}

// Successors returns u's successors as a fresh slice.
func (s *SafeGraph) Successors(u NodeID) []NodeID {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.Successors(u)
}

// Degree returns u's out-degree.
func (s *SafeGraph) Degree(u NodeID) int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.Degree(u)
}

// NumEdges returns the number of distinct stored edges.
func (s *SafeGraph) NumEdges() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.NumEdges()
}

// NumNodes returns the number of distinct source nodes.
func (s *SafeGraph) NumNodes() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.NumNodes()
}

// MemoryUsage returns the structural bytes held by the graph.
func (s *SafeGraph) MemoryUsage() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.MemoryUsage()
}

// Save snapshots the graph to w while holding the read lock.
func (s *SafeGraph) Save(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.g.Save(w)
}

// Save writes a binary snapshot of the graph (header + fixed-width edge
// records) suitable for Load.
func (g *Graph) Save(w io.Writer) error { return g.g.Save(w) }

// Load reads a snapshot produced by Graph.Save into a fresh Graph.
func Load(r io.Reader) (*Graph, error) { return LoadWithOptions(r, Options{}) }

// LoadWithOptions reads a snapshot with explicit tuning.
func LoadWithOptions(r io.Reader, o Options) (*Graph, error) {
	g, err := core.LoadGraph(r, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Save writes a binary snapshot of the weighted graph including weights.
func (w *Weighted) Save(dst io.Writer) error { return w.w.Save(dst) }

// LoadWeighted reads a snapshot produced by Weighted.Save.
func LoadWeighted(r io.Reader) (*Weighted, error) {
	return LoadWeightedWithOptions(r, Options{})
}

// LoadWeightedWithOptions reads a weighted snapshot with explicit tuning.
func LoadWeightedWithOptions(r io.Reader, o Options) (*Weighted, error) {
	w, err := core.LoadWeighted(r, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Weighted{w: w}, nil
}
