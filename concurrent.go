package cuckoograph

import (
	"io"

	"cuckoograph/internal/analytics"
	"cuckoograph/internal/core"
	"cuckoograph/internal/sharded"
)

// SafeGraph is the concurrency-safe CuckooGraph: a thin alias over the
// sharded engine, which hash-partitions edges by source node across
// Options.ShardCount independent shards (each a private single-writer
// CuckooGraph behind its own read-write lock). Mutations on different
// shards proceed in parallel; point queries and traversals take only
// the owning shard's read lock. This is the deployment shape used by
// the server integrations (§V-F runs the structure behind Redis's
// command loop).
//
// Traversal callbacks run on a point-in-time copy of the relevant
// successor or node set, taken under the shard read lock and invoked
// after it is released — so callbacks may re-enter the graph, including
// mutating it, without deadlocking.
type SafeGraph struct {
	s       *sharded.Graph
	workers int
}

// NewSafe returns a concurrency-safe basic CuckooGraph.
func NewSafe() *SafeGraph { return NewSafeWithOptions(Options{}) }

// NewSafeWithOptions returns a concurrency-safe graph with the given
// tuning.
func NewSafeWithOptions(o Options) *SafeGraph {
	return &SafeGraph{s: sharded.New(o.shardedConfig()), workers: o.Workers()}
}

// LoadSafe reads a snapshot produced by Save (or by Graph.Save — the
// formats are identical) into a fresh SafeGraph. Snapshots round-trip
// across shard counts.
func LoadSafe(r io.Reader, o Options) (*SafeGraph, error) {
	s, err := sharded.Load(r, o.shardedConfig())
	if err != nil {
		return nil, err
	}
	return &SafeGraph{s: s, workers: o.Workers()}, nil
}

// Shards returns the number of partitions backing this graph.
func (s *SafeGraph) Shards() int { return s.s.Shards() }

// InsertEdge adds ⟨u,v⟩, reporting whether it is new.
func (s *SafeGraph) InsertEdge(u, v NodeID) bool { return s.s.InsertEdge(u, v) }

// DeleteEdge removes ⟨u,v⟩, reporting whether it existed.
func (s *SafeGraph) DeleteEdge(u, v NodeID) bool { return s.s.DeleteEdge(u, v) }

// HasEdge reports whether ⟨u,v⟩ is stored.
func (s *SafeGraph) HasEdge(u, v NodeID) bool { return s.s.HasEdge(u, v) }

// ForEachSuccessor calls fn for each successor of u until fn returns
// false, without requiring the caller to manage any lock.
func (s *SafeGraph) ForEachSuccessor(u NodeID, fn func(v NodeID) bool) {
	s.s.ForEachSuccessor(u, fn)
}

// ForEachNode calls fn for every node with at least one out-edge.
func (s *SafeGraph) ForEachNode(fn func(u NodeID) bool) { s.s.ForEachNode(fn) }

// Successors returns u's successors as a fresh slice.
func (s *SafeGraph) Successors(u NodeID) []NodeID { return s.s.Successors(u) }

// Degree returns u's out-degree.
func (s *SafeGraph) Degree(u NodeID) int { return s.s.Degree(u) }

// NumEdges returns the number of distinct stored edges.
func (s *SafeGraph) NumEdges() uint64 { return s.s.NumEdges() }

// NumNodes returns the number of distinct source nodes.
func (s *SafeGraph) NumNodes() uint64 { return s.s.NumNodes() }

// MemoryUsage returns the structural bytes summed across shards.
func (s *SafeGraph) MemoryUsage() uint64 { return s.s.MemoryUsage() }

// Stats returns structural counters merged across shards.
func (s *SafeGraph) Stats() core.Stats { return s.s.Stats() }

// BFS traverses from root with the frontier expansion fanned out over
// Options.Parallelism workers, returning the visited nodes in level
// order.
func (s *SafeGraph) BFS(root NodeID) []NodeID {
	return analytics.ParallelBFS(s.s, root, s.workers)
}

// PageRank runs iters rounds of the power method (damping 0.85) with
// each iteration's contribution pass partitioned over
// Options.Parallelism workers.
func (s *SafeGraph) PageRank(iters int) map[NodeID]float64 {
	return analytics.ParallelPageRank(s.s, iters, s.workers)
}

// Save snapshots the graph as a consistent cut even under concurrent
// mutation: the graph is frozen only briefly and the serialization
// streams from a frozen view while writers proceed.
func (s *SafeGraph) Save(w io.Writer) error { return s.s.Save(w) }

// FrozenView is an immutable, cross-shard-consistent snapshot of a
// SafeGraph, stamped with a monotonic epoch. Taking one copies nothing;
// the graph lazily copies-on-write only the adjacency cells later
// mutations actually touch, so long analytics passes run on a frozen
// view without ever blocking writers. Call Release when done.
type FrozenView struct {
	v       *sharded.View
	workers int
}

// Snapshot returns a frozen view of the graph as it is now.
func (s *SafeGraph) Snapshot() *FrozenView {
	return &FrozenView{v: s.s.Snapshot(), workers: s.workers}
}

// Epoch returns the monotonic snapshot epoch of the view.
func (f *FrozenView) Epoch() uint64 { return f.v.Epoch() }

// Release drops the view; the graph stops preserving state for it.
func (f *FrozenView) Release() { f.v.Release() }

// HasEdge reports whether ⟨u,v⟩ was stored at the view's epoch.
func (f *FrozenView) HasEdge(u, v NodeID) bool { return f.v.HasEdge(u, v) }

// Successors returns u's successors at the view's epoch.
func (f *FrozenView) Successors(u NodeID) []NodeID { return f.v.Successors(u) }

// ForEachSuccessor calls fn for each successor u had at the view's
// epoch until fn returns false.
func (f *FrozenView) ForEachSuccessor(u NodeID, fn func(v NodeID) bool) {
	f.v.ForEachSuccessor(u, fn)
}

// ForEachNode calls fn for every node that had an out-edge at the epoch.
func (f *FrozenView) ForEachNode(fn func(u NodeID) bool) { f.v.ForEachNode(fn) }

// NumEdges returns the number of distinct edges at the view's epoch.
func (f *FrozenView) NumEdges() uint64 { return f.v.NumEdges() }

// NumNodes returns the number of distinct source nodes at the epoch.
func (f *FrozenView) NumNodes() uint64 { return f.v.NumNodes() }

// BFS traverses the frozen view from root with the worker-pool
// frontier expansion — online analytics that never stalls ingestion.
func (f *FrozenView) BFS(root NodeID) []NodeID {
	return analytics.ParallelBFS(f.v, root, f.workers)
}

// PageRank runs iters rounds of the power method over the frozen view.
func (f *FrozenView) PageRank(iters int) map[NodeID]float64 {
	return analytics.ParallelPageRank(f.v, iters, f.workers)
}

// Save writes a binary snapshot of the graph (header + fixed-width edge
// records) suitable for Load.
func (g *Graph) Save(w io.Writer) error { return g.g.Save(w) }

// Load reads a snapshot produced by Graph.Save into a fresh Graph.
func Load(r io.Reader) (*Graph, error) { return LoadWithOptions(r, Options{}) }

// LoadWithOptions reads a snapshot with explicit tuning.
func LoadWithOptions(r io.Reader, o Options) (*Graph, error) {
	g, err := core.LoadGraph(r, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Graph{g: g}, nil
}

// Save writes a binary snapshot of the weighted graph including weights.
func (w *Weighted) Save(dst io.Writer) error { return w.w.Save(dst) }

// LoadWeighted reads a snapshot produced by Weighted.Save.
func LoadWeighted(r io.Reader) (*Weighted, error) {
	return LoadWeightedWithOptions(r, Options{})
}

// LoadWeightedWithOptions reads a weighted snapshot with explicit tuning.
func LoadWeightedWithOptions(r io.Reader, o Options) (*Weighted, error) {
	w, err := core.LoadWeighted(r, o.coreConfig())
	if err != nil {
		return nil, err
	}
	return &Weighted{w: w}, nil
}
